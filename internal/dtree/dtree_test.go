package dtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeStepData builds a regression problem with a sharp step: y = 10 for
// x0 < 5, else 50, plus a linear term on x1.
func makeStepData(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x0 := rng.Float64() * 10
		x1 := rng.Float64() * 2
		X[i] = []float64{x0, x1}
		if x0 < 5 {
			y[i] = 10 + 3*x1
		} else {
			y[i] = 50 + 3*x1
		}
	}
	return X, y
}

func TestRegressorLearnsStep(t *testing.T) {
	X, y := makeStepData(400, 1)
	r, err := TrainRegressor(X, y, Options{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Predictions near the two plateaus.
	if got := r.Predict([]float64{2, 0}); math.Abs(got-10) > 4 {
		t.Errorf("Predict(low) = %v, want ~10", got)
	}
	if got := r.Predict([]float64{8, 0}); math.Abs(got-50) > 4 {
		t.Errorf("Predict(high) = %v, want ~50", got)
	}
	if r.NFeatures() != 2 {
		t.Errorf("NFeatures = %d", r.NFeatures())
	}
	if r.Depth() < 1 || r.Leaves() < 2 {
		t.Errorf("tree too small: depth %d leaves %d", r.Depth(), r.Leaves())
	}
}

func TestRegressorConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}}
	y := []float64{7, 7, 7, 7, 7, 7}
	r, err := TrainRegressor(X, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Predict([]float64{99}); got != 7 {
		t.Errorf("constant predict = %v, want 7", got)
	}
	if r.Leaves() != 1 {
		t.Errorf("constant target should yield a stump, got %d leaves", r.Leaves())
	}
}

func TestRegressorInputValidation(t *testing.T) {
	if _, err := TrainRegressor(nil, nil, Options{}); err == nil {
		t.Error("empty training set did not error")
	}
	if _, err := TrainRegressor([][]float64{{1}}, []float64{1, 2}, Options{}); err == nil {
		t.Error("length mismatch did not error")
	}
	if _, err := TrainRegressor([][]float64{{1}, {1, 2}}, []float64{1, 2}, Options{}); err == nil {
		t.Error("ragged rows did not error")
	}
	if _, err := TrainRegressor([][]float64{{}, {}}, []float64{1, 2}, Options{}); err == nil {
		t.Error("zero-width rows did not error")
	}
}

func TestRegressorMinLeafRespected(t *testing.T) {
	X, y := makeStepData(100, 2)
	r, err := TrainRegressor(X, y, Options{MaxDepth: 20, MinLeaf: 30})
	if err != nil {
		t.Fatal(err)
	}
	// With MinLeaf 30 on 100 samples, at most 3 leaves.
	if r.Leaves() > 3 {
		t.Errorf("leaves = %d, want <= 3 under MinLeaf=30", r.Leaves())
	}
}

func TestRegressorDepthLimit(t *testing.T) {
	X, y := makeStepData(500, 3)
	r, err := TrainRegressor(X, y, Options{MaxDepth: 2, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Depth() > 2 {
		t.Errorf("depth = %d, want <= 2", r.Depth())
	}
}

// Property: a regression tree's prediction is always within [min(y), max(y)].
func TestRegressorPredictionBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		X := make([][]float64, n)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			y[i] = rng.NormFloat64() * 100
			lo = math.Min(lo, y[i])
			hi = math.Max(hi, y[i])
		}
		r, err := TrainRegressor(X, y, Options{})
		if err != nil {
			return false
		}
		for k := 0; k < 20; k++ {
			p := r.Predict([]float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPredictAll(t *testing.T) {
	X, y := makeStepData(100, 4)
	r, _ := TrainRegressor(X, y, Options{})
	preds := r.PredictAll(X)
	if len(preds) != len(X) {
		t.Fatalf("PredictAll length %d", len(preds))
	}
	for i := range preds {
		if preds[i] != r.Predict(X[i]) {
			t.Fatal("PredictAll disagrees with Predict")
		}
	}
}

// makeClsData: class = 1 if x0 > 3 and x1 > 1 else 0.
func makeClsData(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x0 := rng.Float64() * 6
		x1 := rng.Float64() * 2
		X[i] = []float64{x0, x1}
		if x0 > 3 && x1 > 1 {
			y[i] = 1
		}
	}
	return X, y
}

func TestClassifierLearnsAND(t *testing.T) {
	X, y := makeClsData(600, 5)
	c, err := TrainClassifier(X, y, 2, Options{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc := c.Accuracy(X, y); acc < 0.97 {
		t.Errorf("training accuracy = %v, want >= 0.97", acc)
	}
	if got := c.Predict([]float64{5, 1.8}); got != 1 {
		t.Errorf("Predict(5,1.8) = %d, want 1", got)
	}
	if got := c.Predict([]float64{1, 1.8}); got != 0 {
		t.Errorf("Predict(1,1.8) = %d, want 0", got)
	}
}

func TestClassifierValidation(t *testing.T) {
	X := [][]float64{{1}, {2}}
	if _, err := TrainClassifier(X, []int{0, 5}, 2, Options{}); err == nil {
		t.Error("out-of-range label did not error")
	}
	if _, err := TrainClassifier(X, []int{0, 1}, 1, Options{}); err == nil {
		t.Error("single class did not error")
	}
	if _, err := TrainClassifier(nil, nil, 2, Options{}); err == nil {
		t.Error("empty set did not error")
	}
}

func TestFeatureImportance(t *testing.T) {
	// Class depends only on feature 0; importance must concentrate there.
	rng := rand.New(rand.NewSource(6))
	n := 500
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		X[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if X[i][0] > 0.5 {
			y[i] = 1
		}
	}
	c, err := TrainClassifier(X, y, 2, Options{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	imp := c.FeatureImportance()
	if len(imp) != 3 {
		t.Fatalf("importance length %d", len(imp))
	}
	if imp[0] < 0.9 {
		t.Errorf("importance[0] = %v, want >= 0.9", imp[0])
	}
	sum := imp[0] + imp[1] + imp[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v, want 1", sum)
	}
}

func TestPruneReducesLeavesWithoutAccuracyLoss(t *testing.T) {
	// Noisy labels force an overgrown tree; pruning against validation
	// data must shrink it while not hurting validation accuracy.
	rng := rand.New(rand.NewSource(7))
	n := 800
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		X[i] = []float64{rng.Float64(), rng.Float64()}
		if X[i][0] > 0.5 {
			y[i] = 1
		}
		if rng.Float64() < 0.15 { // label noise
			y[i] = 1 - y[i]
		}
	}
	Xtr, ytr := X[:500], y[:500]
	Xval, yval := X[500:], y[500:]
	c, err := TrainClassifier(Xtr, ytr, 2, Options{MaxDepth: 10, MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := c.Leaves()
	accBefore := c.Accuracy(Xval, yval)
	c.Prune(Xval, yval)
	after := c.Leaves()
	accAfter := c.Accuracy(Xval, yval)
	if after >= before {
		t.Errorf("pruning did not shrink the tree: %d -> %d leaves", before, after)
	}
	if accAfter < accBefore {
		t.Errorf("pruning reduced validation accuracy %v -> %v", accBefore, accAfter)
	}
	// Pruning with no validation data is a no-op.
	c.Prune(nil, nil)
}

func TestSplitsAndDescribe(t *testing.T) {
	X, y := makeClsData(400, 8)
	c, err := TrainClassifier(X, y, 2, Options{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.FeatureNames = []string{"PS", "DNO"}
	sp := c.Splits()
	if len(sp) == 0 {
		t.Fatal("no splits recorded")
	}
	if sp[0].Depth != 0 {
		t.Error("splits not ordered shallowest-first")
	}
	if sp[0].Name != "PS" && sp[0].Name != "DNO" {
		t.Errorf("split name = %q", sp[0].Name)
	}
	if d := c.Describe(2); len(d) == 0 {
		t.Error("empty Describe")
	}
}

func TestGBDTBeatsSingleTreeOnSmooth(t *testing.T) {
	// Smooth nonlinear target: y = sin(x0)*5 + x1^2.
	rng := rand.New(rand.NewSource(9))
	n := 600
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = []float64{rng.Float64() * 6, rng.Float64() * 3}
		y[i] = 5*math.Sin(X[i][0]) + X[i][1]*X[i][1]
	}
	Xtr, ytr := X[:400], y[:400]
	Xte, yte := X[400:], y[400:]
	single, err := TrainRegressor(Xtr, ytr, Options{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	boost, err := TrainGBDT(Xtr, ytr, GBDTOptions{Trees: 150, LearningRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	mse := func(pred func([]float64) float64) float64 {
		s := 0.0
		for i := range Xte {
			d := pred(Xte[i]) - yte[i]
			s += d * d
		}
		return s / float64(len(Xte))
	}
	ms, mb := mse(single.Predict), mse(boost.Predict)
	if mb >= ms {
		t.Errorf("GBDT mse %v not better than single depth-3 tree %v", mb, ms)
	}
	if boost.Rounds() == 0 {
		t.Error("GBDT trained zero rounds")
	}
}

func TestGBDTEarlyStopOnPerfectFit(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
	y := []float64{3, 3, 3, 3, 3, 3, 3, 3}
	g, err := TrainGBDT(X, y, GBDTOptions{Trees: 50})
	if err != nil {
		t.Fatal(err)
	}
	if g.Rounds() != 0 {
		t.Errorf("constant target should stop immediately, got %d rounds", g.Rounds())
	}
	if got := g.Predict([]float64{4}); got != 3 {
		t.Errorf("Predict = %v, want 3", got)
	}
}

func TestGBDTValidation(t *testing.T) {
	if _, err := TrainGBDT(nil, nil, GBDTOptions{}); err == nil {
		t.Error("empty GBDT training set did not error")
	}
}

// Property: classifier training accuracy on separable data with a deep tree
// is perfect.
func TestClassifierSeparableProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 80
		X := make([][]float64, n)
		y := make([]int, n)
		cut := rng.Float64()*10 - 5
		for i := 0; i < n; i++ {
			X[i] = []float64{rng.NormFloat64() * 5}
			if X[i][0] > cut {
				y[i] = 1
			}
		}
		c, err := TrainClassifier(X, y, 2, Options{MaxDepth: 25})
		if err != nil {
			return false
		}
		return c.Accuracy(X, y) == 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
