// Package dtree implements CART-style decision trees — regression trees,
// classification trees, and gradient-boosted regression ensembles — from
// scratch on the standard library.
//
// The paper uses tree learners in four places, all reproduced on top of this
// package:
//
//   - Decision Tree Regression for the throughput+signal-strength power
//     model (§4.5, Fig. 15);
//   - DTR calibration of the software power monitor (§4.6, Fig. 16);
//   - Gradient Boosted Decision Trees for mmWave throughput prediction in
//     ABR streaming (§5.3, Fig. 18a, after Lumos5G);
//   - interpretable classification trees with Gini feature importance for
//     4G/5G interface selection in web browsing (§6.2, Fig. 22, Table 6).
package dtree

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// node is one tree node; leaves have feature == -1.
type node struct {
	feature   int     // split feature index, -1 for leaf
	threshold float64 // go left if x[feature] < threshold
	left      *node
	right     *node
	value     float64 // regression prediction or encoded class
	samples   int
	impurity  float64 // SSE (regression) or Gini (classification) at node
	classDist []int   // classification only: per-class counts
}

func (n *node) isLeaf() bool { return n.feature < 0 }

// Options controls tree growth.
type Options struct {
	// MaxDepth limits tree depth; 0 means a library default of 12.
	MaxDepth int
	// MinLeaf is the minimum number of samples per leaf; 0 means 1 for
	// classification and 3 for regression.
	MinLeaf int
	// MinImpurityDecrease skips splits whose weighted impurity reduction
	// falls below this threshold.
	MinImpurityDecrease float64
}

func (o Options) withDefaults(regression bool) Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 12
	}
	if o.MinLeaf == 0 {
		if regression {
			o.MinLeaf = 3
		} else {
			o.MinLeaf = 1
		}
	}
	return o
}

func validate(X [][]float64, n int) (int, error) {
	if len(X) == 0 {
		return 0, errors.New("dtree: empty training set")
	}
	if len(X) != n {
		return 0, fmt.Errorf("dtree: %d feature rows vs %d labels", len(X), n)
	}
	nf := len(X[0])
	if nf == 0 {
		return 0, errors.New("dtree: zero-width feature rows")
	}
	for i, r := range X {
		if len(r) != nf {
			return 0, fmt.Errorf("dtree: row %d has %d features, want %d", i, len(r), nf)
		}
	}
	return nf, nil
}

// ---------------------------------------------------------------------------
// Regression trees

// Regressor is a CART regression tree minimising squared error.
type Regressor struct {
	root      *node
	nFeatures int
}

// TrainRegressor grows a regression tree on (X, y).
func TrainRegressor(X [][]float64, y []float64, opt Options) (*Regressor, error) {
	nf, err := validate(X, len(y))
	if err != nil {
		return nil, err
	}
	g := &regGrower{X: X, y: y, opt: opt.withDefaults(true),
		scratch: make([]int32, 0, len(X))}
	r := &Regressor{nFeatures: nf}
	r.root = g.grow(featureOrders(X), 0)
	return r, nil
}

func meanAndSSE(y []float64, idx []int32) (mean, sse float64) {
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	for _, i := range idx {
		d := y[i] - mean
		sse += d * d
	}
	return mean, sse
}

// featureOrders returns, per feature, the sample indices sorted by that
// feature's value (ties broken by index, so growth is deterministic). The
// orders are computed once per training set and carved by stable partition
// at every node, replacing the per-node per-feature sort that dominated
// GBDT training time.
func featureOrders(X [][]float64) [][]int32 {
	nf := len(X[0])
	orders := make([][]int32, nf)
	for f := 0; f < nf; f++ {
		o := make([]int32, len(X))
		for i := range o {
			o[i] = int32(i)
		}
		sort.Slice(o, func(a, b int) bool {
			xa, xb := X[o[a]][f], X[o[b]][f]
			if xa != xb {
				return xa < xb
			}
			return o[a] < o[b]
		})
		orders[f] = o
	}
	return orders
}

// regGrower grows one regression tree over presorted per-feature orders.
// The orders passed to grow are consumed (partitioned in place).
type regGrower struct {
	X       [][]float64
	y       []float64
	opt     Options
	scratch []int32 // right-half buffer for the stable partition
}

func (g *regGrower) grow(orders [][]int32, depth int) *node {
	idx := orders[0]
	mean, sse := meanAndSSE(g.y, idx)
	n := &node{feature: -1, value: mean, samples: len(idx), impurity: sse}
	if depth >= g.opt.MaxDepth || len(idx) < 2*g.opt.MinLeaf || sse <= 1e-12 {
		return n
	}
	feat, thr, gain := g.bestSplit(orders, sse)
	if feat < 0 || gain <= g.opt.MinImpurityDecrease {
		return n
	}
	// Stable partition of every feature's order around the chosen split:
	// left and right halves stay sorted, so child nodes never re-sort.
	left := make([][]int32, len(orders))
	right := make([][]int32, len(orders))
	for f := range orders {
		o := orders[f]
		k := 0
		r := g.scratch[:0]
		for _, i := range o {
			if g.X[i][feat] < thr {
				o[k] = i
				k++
			} else {
				r = append(r, i)
			}
		}
		copy(o[k:], r)
		left[f], right[f] = o[:k:k], o[k:]
	}
	if len(left[0]) < g.opt.MinLeaf || len(right[0]) < g.opt.MinLeaf {
		return n
	}
	n.feature = feat
	n.threshold = thr
	n.left = g.grow(left, depth+1)
	n.right = g.grow(right, depth+1)
	return n
}

// bestSplit scans every feature for the threshold maximising SSE reduction,
// using the running-sums trick over the node's presorted orders. total is
// the node's SSE.
func (g *regGrower) bestSplit(orders [][]int32, total float64) (feat int, thr, gain float64) {
	feat = -1
	n := len(orders[0])
	minLeaf := g.opt.MinLeaf
	y := g.y
	for f := range orders {
		order := orders[f]
		var sumL, sqL float64
		sumT, sqT := 0.0, 0.0
		for _, i := range order {
			sumT += y[i]
			sqT += y[i] * y[i]
		}
		for k := 0; k < n-1; k++ {
			yi := y[order[k]]
			sumL += yi
			sqL += yi * yi
			if k+1 < minLeaf || n-(k+1) < minLeaf {
				continue
			}
			a, b := g.X[order[k]][f], g.X[order[k+1]][f]
			if a == b {
				continue
			}
			nl := float64(k + 1)
			nr := float64(n - k - 1)
			sseL := sqL - sumL*sumL/nl
			sumR := sumT - sumL
			sseR := (sqT - sqL) - sumR*sumR/nr
			if dec := total - sseL - sseR; dec > gain {
				gain = dec
				feat = f
				thr = (a + b) / 2
			}
		}
	}
	return feat, thr, gain
}

// Predict evaluates the tree at feature vector x.
func (r *Regressor) Predict(x []float64) float64 {
	n := r.root
	for !n.isLeaf() {
		if x[n.feature] < n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// PredictAll evaluates the tree at every row.
func (r *Regressor) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = r.Predict(x)
	}
	return out
}

// NFeatures returns the feature-vector width the tree was trained with.
func (r *Regressor) NFeatures() int { return r.nFeatures }

// Depth returns the maximum depth of the tree (a stump has depth 0).
func (r *Regressor) Depth() int { return depth(r.root) }

// Leaves returns the number of leaf nodes.
func (r *Regressor) Leaves() int { return leaves(r.root) }

func depth(n *node) int {
	if n == nil || n.isLeaf() {
		return 0
	}
	l, rr := depth(n.left), depth(n.right)
	if l > rr {
		return l + 1
	}
	return rr + 1
}

func leaves(n *node) int {
	if n == nil {
		return 0
	}
	if n.isLeaf() {
		return 1
	}
	return leaves(n.left) + leaves(n.right)
}

// ---------------------------------------------------------------------------
// Classification trees

// Classifier is a CART classification tree minimising Gini impurity.
type Classifier struct {
	root      *node
	nFeatures int
	nClasses  int
	// FeatureNames, if set, is used by Describe to render splits.
	FeatureNames []string
}

// TrainClassifier grows a classification tree on (X, y) with labels in
// [0, nClasses).
func TrainClassifier(X [][]float64, y []int, nClasses int, opt Options) (*Classifier, error) {
	nf, err := validate(X, len(y))
	if err != nil {
		return nil, err
	}
	if nClasses < 2 {
		return nil, fmt.Errorf("dtree: need >= 2 classes, got %d", nClasses)
	}
	for i, label := range y {
		if label < 0 || label >= nClasses {
			return nil, fmt.Errorf("dtree: label %d at row %d out of range [0,%d)", label, i, nClasses)
		}
	}
	opt = opt.withDefaults(false)
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	c := &Classifier{nFeatures: nf, nClasses: nClasses}
	c.root = growCls(X, y, idx, nClasses, opt, 0)
	return c, nil
}

func classCounts(y []int, idx []int, k int) []int {
	c := make([]int, k)
	for _, i := range idx {
		c[y[i]]++
	}
	return c
}

func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

func argmax(counts []int) int {
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return best
}

func growCls(X [][]float64, y []int, idx []int, k int, opt Options, d int) *node {
	counts := classCounts(y, idx, k)
	g := gini(counts, len(idx))
	n := &node{feature: -1, value: float64(argmax(counts)), samples: len(idx),
		impurity: g, classDist: counts}
	if d >= opt.MaxDepth || len(idx) < 2*opt.MinLeaf || g == 0 {
		return n
	}
	feat, thr, gain := bestClsSplit(X, y, idx, k, opt.MinLeaf)
	if feat < 0 || gain <= opt.MinImpurityDecrease {
		return n
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][feat] < thr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) < opt.MinLeaf || len(ri) < opt.MinLeaf {
		return n
	}
	n.feature = feat
	n.threshold = thr
	n.left = growCls(X, y, li, k, opt, d+1)
	n.right = growCls(X, y, ri, k, opt, d+1)
	return n
}

func bestClsSplit(X [][]float64, y []int, idx []int, k, minLeaf int) (feat int, thr, gain float64) {
	feat = -1
	n := len(idx)
	total := gini(classCounts(y, idx, k), n)
	order := make([]int, n)
	countsL := make([]int, k)
	countsR := make([]int, k)
	for f := 0; f < len(X[idx[0]]); f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		for i := range countsL {
			countsL[i] = 0
		}
		copy(countsR, classCounts(y, idx, k))
		for p := 0; p < n-1; p++ {
			c := y[order[p]]
			countsL[c]++
			countsR[c]--
			if p+1 < minLeaf || n-(p+1) < minLeaf {
				continue
			}
			a, b := X[order[p]][f], X[order[p+1]][f]
			if a == b {
				continue
			}
			nl, nr := p+1, n-p-1
			g := total -
				float64(nl)/float64(n)*gini(countsL, nl) -
				float64(nr)/float64(n)*gini(countsR, nr)
			if g > gain {
				gain = g
				feat = f
				thr = (a + b) / 2
			}
		}
	}
	return feat, thr, gain
}

// Predict returns the class label for feature vector x.
func (c *Classifier) Predict(x []float64) int {
	n := c.root
	for !n.isLeaf() {
		if x[n.feature] < n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return int(n.value)
}

// Accuracy returns the fraction of rows classified correctly.
func (c *Classifier) Accuracy(X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	ok := 0
	for i, x := range X {
		if c.Predict(x) == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(X))
}

// NFeatures returns the trained feature-vector width.
func (c *Classifier) NFeatures() int { return c.nFeatures }

// Depth returns the tree depth.
func (c *Classifier) Depth() int { return depth(c.root) }

// Leaves returns the number of leaves.
func (c *Classifier) Leaves() int { return leaves(c.root) }

// FeatureImportance returns normalised Gini importance per feature: the
// total impurity decrease contributed by splits on that feature. This is
// what makes the web interface-selection models interpretable (§6.2).
func (c *Classifier) FeatureImportance() []float64 {
	imp := make([]float64, c.nFeatures)
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil || n.isLeaf() {
			return
		}
		nl, nr := n.left, n.right
		dec := float64(n.samples)*n.impurity -
			float64(nl.samples)*nl.impurity - float64(nr.samples)*nr.impurity
		imp[n.feature] += dec
		walk(nl)
		walk(nr)
	}
	walk(c.root)
	s := 0.0
	for _, v := range imp {
		s += v
	}
	if s > 0 {
		for i := range imp {
			imp[i] /= s
		}
	}
	return imp
}

// Prune performs bottom-up reduced-error pruning against a validation set:
// any internal node whose collapse does not reduce validation accuracy
// becomes a leaf. This mirrors the "bottom-up post-pruned DT" of Fig. 22.
func (c *Classifier) Prune(Xval [][]float64, yval []int) {
	if len(Xval) == 0 {
		return
	}
	var pruneNode func(n *node)
	pruneNode = func(n *node) {
		if n == nil || n.isLeaf() {
			return
		}
		pruneNode(n.left)
		pruneNode(n.right)
		before := c.Accuracy(Xval, yval)
		// Tentatively collapse.
		f, l, r := n.feature, n.left, n.right
		n.feature = -1
		after := c.Accuracy(Xval, yval)
		if after < before {
			n.feature, n.left, n.right = f, l, r // restore
		} else {
			n.left, n.right = nil, nil
		}
	}
	pruneNode(c.root)
}

// SplitInfo describes one internal node for rendering.
type SplitInfo struct {
	Feature   int
	Name      string
	Threshold float64
	Depth     int
	Samples   int
}

// Splits returns the internal nodes in pre-order, shallowest first — the
// interpretable structure shown in Fig. 22.
func (c *Classifier) Splits() []SplitInfo {
	var out []SplitInfo
	var walk func(n *node, d int)
	walk = func(n *node, d int) {
		if n == nil || n.isLeaf() {
			return
		}
		name := fmt.Sprintf("x%d", n.feature)
		if n.feature < len(c.FeatureNames) {
			name = c.FeatureNames[n.feature]
		}
		out = append(out, SplitInfo{Feature: n.feature, Name: name,
			Threshold: n.threshold, Depth: d, Samples: n.samples})
		walk(n.left, d+1)
		walk(n.right, d+1)
	}
	walk(c.root, 0)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Depth < out[j].Depth })
	return out
}

// Describe renders the top levels of the tree as indented text.
func (c *Classifier) Describe(maxDepth int) string {
	var b strings.Builder
	var walk func(n *node, d int)
	walk = func(n *node, d int) {
		if n == nil || d > maxDepth {
			return
		}
		indent := strings.Repeat("  ", d)
		if n.isLeaf() {
			fmt.Fprintf(&b, "%sleaf: class %d (n=%d)\n", indent, int(n.value), n.samples)
			return
		}
		name := fmt.Sprintf("x%d", n.feature)
		if n.feature < len(c.FeatureNames) {
			name = c.FeatureNames[n.feature]
		}
		fmt.Fprintf(&b, "%s%s < %.4g? (n=%d)\n", indent, name, n.threshold, n.samples)
		walk(n.left, d+1)
		walk(n.right, d+1)
	}
	walk(c.root, 0)
	return b.String()
}

// ---------------------------------------------------------------------------
// Gradient-boosted regression trees

// GBDTOptions configures gradient boosting.
type GBDTOptions struct {
	// Trees is the number of boosting rounds; 0 means 100.
	Trees int
	// LearningRate shrinks each tree's contribution; 0 means 0.1.
	LearningRate float64
	// Tree controls each weak learner; a zero value yields shallow
	// depth-3 trees.
	Tree Options
}

func (o GBDTOptions) withDefaults() GBDTOptions {
	if o.Trees == 0 {
		o.Trees = 100
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.1
	}
	if o.Tree.MaxDepth == 0 {
		o.Tree.MaxDepth = 3
	}
	return o
}

// GBDT is a gradient-boosted ensemble of regression trees under squared
// loss (each round fits the residuals of the current ensemble).
type GBDT struct {
	base  float64
	lr    float64
	trees []*Regressor
}

// TrainGBDT fits a boosted ensemble on (X, y). The per-feature sample
// orders are sorted once for the whole ensemble and copied into a reusable
// work buffer each round: only the residuals change between rounds, never
// the feature values the orders depend on.
func TrainGBDT(X [][]float64, y []float64, opt GBDTOptions) (*GBDT, error) {
	nf, err := validate(X, len(y))
	if err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	g := &GBDT{lr: opt.LearningRate}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	g.base = mean
	resid := make([]float64, len(y))
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = mean
	}
	master := featureOrders(X)
	work := make([][]int32, len(master))
	for f := range work {
		work[f] = make([]int32, len(X))
	}
	grower := &regGrower{X: X, y: resid, opt: opt.Tree.withDefaults(true),
		scratch: make([]int32, 0, len(X))}
	for round := 0; round < opt.Trees; round++ {
		var maxAbs float64
		for i := range y {
			resid[i] = y[i] - pred[i]
			if a := math.Abs(resid[i]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs < 1e-9 {
			break // perfectly fit
		}
		for f := range master {
			copy(work[f], master[f])
		}
		tr := &Regressor{nFeatures: nf}
		tr.root = grower.grow(work, 0)
		g.trees = append(g.trees, tr)
		for i := range pred {
			pred[i] += g.lr * tr.Predict(X[i])
		}
	}
	return g, nil
}

// Predict evaluates the ensemble at x.
func (g *GBDT) Predict(x []float64) float64 {
	out := g.base
	for _, t := range g.trees {
		out += g.lr * t.Predict(x)
	}
	return out
}

// Rounds returns the number of boosted trees.
func (g *GBDT) Rounds() int { return len(g.trees) }
