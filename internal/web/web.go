// Package web reproduces the paper's web-browsing QoE study (§6): loading
// Alexa-top-1500-class websites over mmWave 5G versus 4G, measuring page
// load time (PLT) and radio energy, and learning interpretable decision
// trees that pick the radio interface per website under different
// energy/performance utility weights (Table 6, Fig. 19-22).
//
// Since the real page corpus is not redistributable, GenCorpus synthesises
// websites whose structural statistics (object counts, page sizes, dynamic
// object ratios — the Table 5 features) match the distributions the paper's
// figures imply. The page-load model fetches objects over parallel
// connections in RTT-gated rounds, so 5G's bandwidth advantage compresses
// the byte-transfer term while the RTT-bound round structure keeps PLT
// finite — exactly the regime where heavier pages widen the 4G-5G gap
// (Fig. 19).
package web

import (
	"math"
	"math/rand"

	"fivegsim/internal/device"
	"fivegsim/internal/power"
	"fivegsim/internal/radio"
	"fivegsim/internal/transport"
)

// Website is one page of the corpus with the Table 5 structural factors.
type Website struct {
	Rank           int
	NumObjects     int // NO
	NumImages      int // NI
	NumVideos      int // NV
	DynamicObjects int // for DNO (ratio of dynamic to total objects)
	TotalBytes     float64
	DynamicBytes   float64
}

// DynamicRatio returns DNO: the fraction of objects that are dynamic.
func (w Website) DynamicRatio() float64 {
	if w.NumObjects == 0 {
		return 0
	}
	return float64(w.DynamicObjects) / float64(w.NumObjects)
}

// DynamicSizeRatio returns DSO: dynamic bytes over total bytes.
func (w Website) DynamicSizeRatio() float64 {
	if w.TotalBytes == 0 {
		return 0
	}
	return w.DynamicBytes / w.TotalBytes
}

// AvgObjectBytes returns AOS.
func (w Website) AvgObjectBytes() float64 {
	if w.NumObjects == 0 {
		return 0
	}
	return w.TotalBytes / float64(w.NumObjects)
}

// FeatureNames lists the Table 5 factors in Features() order.
var FeatureNames = []string{"DNO", "DSO", "NO", "AOS", "NI", "NV", "PS"}

// Features returns the Table 5 feature vector for model training.
func (w Website) Features() []float64 {
	return []float64{
		w.DynamicRatio(),
		w.DynamicSizeRatio(),
		float64(w.NumObjects),
		w.AvgObjectBytes(),
		float64(w.NumImages),
		float64(w.NumVideos),
		w.TotalBytes,
	}
}

// GenCorpus synthesises n websites with Alexa-top-list-like structural
// distributions: log-normal object counts and page sizes (correlated),
// beta-ish dynamic ratios, and image/video mixes.
func GenCorpus(n int, seed int64) []Website {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Website, n)
	for i := range out {
		// Object count: log-normal, median ~70, range ~[4, 1200].
		no := int(math.Exp(4.25 + rng.NormFloat64()*0.9))
		if no < 4 {
			no = 4
		}
		if no > 1200 {
			no = 1200
		}
		// Average object size: log-normal around ~30 KB; total page size
		// correlates with object count.
		aos := math.Exp(10.3 + rng.NormFloat64()*0.7) // ~30 KB median
		ps := aos * float64(no)
		if ps > 60e6 {
			ps = 60e6
		}
		dynFrac := rng.Float64() * rng.Float64() // skewed toward small
		if rng.Float64() < 0.15 {
			dynFrac = 0.6 + rng.Float64()*0.4 // ad/script-heavy tail
		}
		dyn := int(dynFrac * float64(no))
		ni := int(float64(no) * (0.25 + rng.Float64()*0.35))
		nv := 0
		if rng.Float64() < 0.25 {
			nv = 1 + rng.Intn(4)
		}
		out[i] = Website{
			Rank:           i + 1,
			NumObjects:     no,
			NumImages:      ni,
			NumVideos:      nv,
			DynamicObjects: dyn,
			TotalBytes:     ps,
			DynamicBytes:   ps * (dynFrac*0.8 + 0.1*rng.Float64()),
		}
	}
	return out
}

// NetProfile describes the network a page is loaded over.
type NetProfile struct {
	Name string
	// EffRTTMs is the effective per-wave round-trip latency: wide-area RTT
	// plus radio scheduling/grant overhead under bursty web traffic. LTE's
	// loaded effective RTT is several times its idle ping.
	EffRTTMs float64
	// BwMbps is the achievable aggregate downlink rate for a page load
	// (bounded by per-connection server rates, not the radio peak).
	BwMbps float64
	// BasePowerW is the web-workload effective radio power floor. The
	// mmWave radio holds continuous reception (beam tracking) throughout a
	// load, so its floor matches the §4.3 connected base; LTE micro-sleeps
	// between bursts (connected-mode DRX), landing well below its iperf
	// base.
	BasePowerW float64
	// SlopeWPerMbps is the marginal transfer power (from the §4 curves).
	SlopeWPerMbps float64
	// Class and UE identify the radio for reporting.
	Class radio.BandClass
	UE    device.Model
}

// The two measured profiles (§6: Verizon mmWave 5G vs 4G on the PX5).
var (
	Profile5G = NetProfile{
		Name:          "5G",
		EffRTTMs:      40,
		BwMbps:        360, // 6 connections x ~60 Mbps server-side
		BasePowerW:    3.2,
		SlopeWPerMbps: power.MustCurve(device.PX5, radio.ClassMmWave, radio.Downlink).SlopeMwPerMbps / 1000,
		Class:         radio.ClassMmWave,
		UE:            device.PX5,
	}
	Profile4G = NetProfile{
		Name:          "4G",
		EffRTTMs:      95,
		BwMbps:        60,
		BasePowerW:    0.40,
		SlopeWPerMbps: power.MustCurve(device.PX5, radio.ClassLTE, radio.Downlink).SlopeMwPerMbps / 1000,
		Class:         radio.ClassLTE,
		UE:            device.PX5,
	}
)

// Load-model constants.
const (
	parallelConns = 6     // browser per-host connection pool
	setupRTTs     = 2.0   // DNS + TCP + TLS before the first byte
	dynThinkS     = 0.120 // server think time per dynamic-object wave
	renderPerObjS = 0.002 // client-side parse/layout per object
	decodeMbps    = 2000  // client decode/processing rate for page bytes
)

// PageLoad is the outcome of loading one website once.
type PageLoad struct {
	Site    Website
	Profile string
	// PLTSeconds is the page load time (onload).
	PLTSeconds float64
	// EnergyJ is the radio energy over the load window (the paper feeds
	// the captured packet trace into the §4 power model).
	EnergyJ float64
	// MeanMbps is the average goodput during the load.
	MeanMbps float64
}

// waves returns the discovery depth of a page: objects are found
// progressively (HTML -> CSS/JS -> images -> beacons), so the critical
// path crosses the network ~log(NO) times beyond a base depth.
func waves(numObjects int) float64 {
	if numObjects < 1 {
		numObjects = 1
	}
	return 3 + math.Log2(float64(numObjects))
}

// Load simulates loading a website over a profile. The rng perturbs
// per-load conditions (server jitter, cache variation); pass a seeded
// source for reproducibility.
func Load(w Website, p NetProfile, rng *rand.Rand) (PageLoad, error) {
	rttS := p.EffRTTMs / 1000 * (0.95 + 0.15*rng.Float64())
	bw := p.BwMbps * (0.85 + 0.15*rng.Float64())

	// Root document: connection setup plus the first fetch.
	html := 60e3 * (0.5 + rng.Float64())
	plt := setupRTTs*rttS + transport.TransferTime(html, rttS, bw, 10)

	// Discovery waves gate the critical path; bulk bytes stream at the
	// link rate; dynamic objects add server think time per wave that
	// contains them; rendering and decoding add client-side time.
	wv := waves(w.NumObjects)
	plt += wv * rttS
	plt += (w.TotalBytes - html) * 8 / (bw * 1e6)
	dynWaves := math.Min(wv, math.Ceil(float64(w.DynamicObjects)/parallelConns))
	plt += dynWaves * dynThinkS * (1 + 0.3*rng.Float64())
	plt += renderPerObjS * float64(w.NumObjects)
	plt += w.TotalBytes * 8 / (decodeMbps * 1e6)

	mean := w.TotalBytes * 8 / 1e6 / plt
	pw := p.BasePowerW + p.SlopeWPerMbps*mean
	energy := pw * plt

	return PageLoad{
		Site: w, Profile: p.Name,
		PLTSeconds: plt,
		EnergyJ:    energy,
		MeanMbps:   mean,
	}, nil
}

// Measurement pairs the 4G and 5G loads of one website (averaged over
// repeats, as the paper repeats each load >= 8 times).
type Measurement struct {
	Site                 Website
	PLT5G, PLT4G         float64 // seconds
	Energy5GJ, Energy4GJ float64
	PLTPenaltyPct        float64 // extra PLT of choosing 4G, in % of 5G PLT
	EnergySavingPct      float64 // energy saved by choosing 4G, in % of 5G energy
	repeats              int
}

// MeasureCorpus loads every site over both profiles with the given number
// of repeats and returns per-site averages — the paper's 30,000+ page-load
// dataset in miniature (1500 sites x repeats x 2 radios).
func MeasureCorpus(sites []Website, repeats int, seed int64) ([]Measurement, error) {
	if repeats < 1 {
		repeats = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Measurement, 0, len(sites))
	for _, w := range sites {
		m := Measurement{Site: w, repeats: repeats}
		for r := 0; r < repeats; r++ {
			l5, err := Load(w, Profile5G, rng)
			if err != nil {
				return nil, err
			}
			l4, err := Load(w, Profile4G, rng)
			if err != nil {
				return nil, err
			}
			m.PLT5G += l5.PLTSeconds
			m.PLT4G += l4.PLTSeconds
			m.Energy5GJ += l5.EnergyJ
			m.Energy4GJ += l4.EnergyJ
		}
		f := float64(repeats)
		m.PLT5G /= f
		m.PLT4G /= f
		m.Energy5GJ /= f
		m.Energy4GJ /= f
		m.PLTPenaltyPct = (m.PLT4G - m.PLT5G) / m.PLT5G * 100
		m.EnergySavingPct = (m.Energy5GJ - m.Energy4GJ) / m.Energy5GJ * 100
		out = append(out, m)
	}
	return out, nil
}
