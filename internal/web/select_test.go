package web

import (
	"testing"
)

func trainedModels(t *testing.T) []*SelectionModel {
	t.Helper()
	ms := measurements(t, 1400, 2)
	models, err := TrainAll(ms, 7)
	if err != nil {
		t.Fatal(err)
	}
	return models
}

func TestModelsTable(t *testing.T) {
	if len(Models) != 5 {
		t.Fatalf("Models = %d, want 5 (M1-M5)", len(Models))
	}
	for _, m := range Models {
		if m.Alpha+m.Beta != 1.0 {
			t.Errorf("%s: alpha+beta = %v, want 1", m.ID, m.Alpha+m.Beta)
		}
	}
	// Alpha increases monotonically M1 -> M5 (Table 6).
	for i := 1; i < len(Models); i++ {
		if Models[i].Alpha <= Models[i-1].Alpha {
			t.Error("model alphas not increasing")
		}
	}
}

func TestTable6Shift(t *testing.T) {
	// Table 6's core structure: as the energy weight grows, the model
	// shifts from (almost) always-5G to always-4G.
	models := trainedModels(t)
	// M1 (performance-first) picks 5G for the overwhelming majority.
	if m1 := models[0]; m1.TestUse5G < 9*m1.TestUse4G {
		t.Errorf("M1 = %d/%d use4G/use5G, want mostly 5G", m1.TestUse4G, m1.TestUse5G)
	}
	// M5 (energy-first) picks 4G essentially always (paper: 420/0).
	if m5 := models[4]; m5.TestUse4G < 19*(m5.TestUse5G+1) {
		t.Errorf("M5 = %d/%d use4G/use5G, want all 4G", m5.TestUse4G, m5.TestUse5G)
	}
	// Use-4G counts are nondecreasing in alpha.
	for i := 1; i < len(models); i++ {
		if models[i].TestUse4G < models[i-1].TestUse4G-20 {
			t.Errorf("use-4G count dropped from %s (%d) to %s (%d)",
				models[i-1].Weights.ID, models[i-1].TestUse4G,
				models[i].Weights.ID, models[i].TestUse4G)
		}
	}
	// M4 and M5 lean heavily 4G with only dynamic-heavy exceptions
	// (paper: 405/15 and 420/0).
	if m4 := models[3]; float64(m4.TestUse4G)/float64(m4.TestUse4G+m4.TestUse5G) < 0.9 {
		t.Errorf("M4 4G share too low: %d/%d", m4.TestUse4G, m4.TestUse5G)
	}
}

func TestSelectionAccuracyAndSavings(t *testing.T) {
	models := trainedModels(t)
	for _, m := range models {
		if m.Accuracy < 0.85 {
			t.Errorf("%s: test accuracy %.2f, want >= 0.85", m.Weights.ID, m.Accuracy)
		}
		if m.EnergySavingPct < 0 || m.EnergySavingPct > 100 {
			t.Errorf("%s: saving = %v%%", m.Weights.ID, m.EnergySavingPct)
		}
	}
	// §6.2: interface selection saves 15-66% energy (for the models that
	// use 4G at all).
	for _, m := range models[1:] {
		if m.TestUse4G > 50 && (m.EnergySavingPct < 15 || m.EnergySavingPct > 85) {
			t.Errorf("%s: energy saving %.0f%%, want within the paper's 15-66%% ballpark",
				m.Weights.ID, m.EnergySavingPct)
		}
	}
}

func TestTopFactorsAreTable5Features(t *testing.T) {
	models := trainedModels(t)
	valid := map[string]bool{}
	for _, n := range FeatureNames {
		valid[n] = true
	}
	sawPageWeight := false
	for _, m := range models {
		for _, f := range m.TopFactors(3) {
			if !valid[f] {
				t.Errorf("%s: split on unknown feature %q", m.Weights.ID, f)
			}
			// Fig. 22: the interpretable splits involve page weight or
			// dynamic content (PS, NO, AOS, DNO, DSO).
			switch f {
			case "PS", "NO", "AOS", "DNO", "DSO":
				sawPageWeight = true
			}
		}
	}
	if !sawPageWeight {
		t.Error("no model split on page-weight/dynamic-content factors")
	}
}

func TestChooseConsistentWithCounts(t *testing.T) {
	ms := measurements(t, 300, 2)
	m, err := TrainSelection(ms, Models[2], 7)
	if err != nil {
		t.Fatal(err)
	}
	c4, c5 := 0, 0
	for _, mm := range ms {
		switch m.Choose(mm.Site) {
		case Use4G:
			c4++
		case Use5G:
			c5++
		default:
			t.Fatal("invalid choice")
		}
	}
	if c4+c5 != len(ms) {
		t.Error("choices do not cover the corpus")
	}
}

func TestTrainSelectionValidation(t *testing.T) {
	if _, err := TrainSelection(nil, Models[0], 1); err == nil {
		t.Error("empty measurements did not error")
	}
	if _, err := TrainSelection(make([]Measurement, 20), Models[0], 1); err == nil {
		t.Error("degenerate (all-zero) measurements did not error")
	}
}

func TestTrainDeterministic(t *testing.T) {
	ms := measurements(t, 200, 2)
	a, err := TrainSelection(ms, Models[1], 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainSelection(ms, Models[1], 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.TestUse4G != b.TestUse4G || a.Accuracy != b.Accuracy {
		t.Error("training not deterministic")
	}
}
