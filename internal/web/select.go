package web

import (
	"fmt"
	"math/rand"

	"fivegsim/internal/dtree"
)

// UtilityWeights is the linear QoE of §6.2: QoE = alpha*EC + beta*PLT
// (lower is better), with EC and PLT min-max normalised over the dataset.
type UtilityWeights struct {
	ID    string
	Label string
	Alpha float64 // energy weight
	Beta  float64 // PLT weight
}

// Models M1-M5 from Table 6.
var Models = []UtilityWeights{
	{"M1", "High Performance", 0.2, 0.8},
	{"M2", "Performance Oriented", 0.4, 0.6},
	{"M3", "Balanced", 0.5, 0.5},
	{"M4", "Better Energy Saving", 0.6, 0.4},
	{"M5", "High Energy Saving", 0.8, 0.2},
}

// Choice labels the classifier's classes.
const (
	Use4G = 0
	Use5G = 1
)

// labelFor computes the ground-truth radio choice for a measurement under
// the weights, given dataset-wide normalisation constants.
func labelFor(m Measurement, w UtilityWeights, maxE, maxP float64) int {
	u4 := w.Alpha*m.Energy4GJ/maxE + w.Beta*m.PLT4G/maxP
	u5 := w.Alpha*m.Energy5GJ/maxE + w.Beta*m.PLT5G/maxP
	if u5 < u4 {
		return Use5G
	}
	return Use4G
}

// SelectionModel is a trained per-website radio selector.
type SelectionModel struct {
	Weights UtilityWeights
	Tree    *dtree.Classifier
	// Test-set outcome (the Table 6 columns).
	TestUse4G int
	TestUse5G int
	Accuracy  float64
	// EnergySavingPct is the mean test-set energy saved versus always-5G
	// when following the model's choices.
	EnergySavingPct float64
	maxE, maxP      float64
}

// TrainSelection fits a bottom-up post-pruned decision tree for the given
// utility weights on a 70:30 split of the measurements (§6.2's model
// setup). The seed shuffles the split.
func TrainSelection(ms []Measurement, w UtilityWeights, seed int64) (*SelectionModel, error) {
	if len(ms) < 10 {
		return nil, fmt.Errorf("web: need >= 10 measurements, got %d", len(ms))
	}
	var maxE, maxP float64
	for _, m := range ms {
		if m.Energy5GJ > maxE {
			maxE = m.Energy5GJ
		}
		if m.Energy4GJ > maxE {
			maxE = m.Energy4GJ
		}
		if m.PLT4G > maxP {
			maxP = m.PLT4G
		}
		if m.PLT5G > maxP {
			maxP = m.PLT5G
		}
	}
	if maxE <= 0 || maxP <= 0 {
		return nil, fmt.Errorf("web: degenerate measurements (maxE=%v maxP=%v)", maxE, maxP)
	}

	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(ms))
	nTrain := len(ms) * 7 / 10
	nVal := nTrain / 5 // held out of training for pruning
	build := func(ids []int) ([][]float64, []int) {
		X := make([][]float64, len(ids))
		y := make([]int, len(ids))
		for i, id := range ids {
			X[i] = ms[id].Site.Features()
			y[i] = labelFor(ms[id], w, maxE, maxP)
		}
		return X, y
	}
	Xtr, ytr := build(idx[:nTrain-nVal])
	Xval, yval := build(idx[nTrain-nVal : nTrain])
	Xte, yte := build(idx[nTrain:])

	tree, err := dtree.TrainClassifier(Xtr, ytr, 2, dtree.Options{MaxDepth: 6, MinLeaf: 5})
	if err != nil {
		return nil, err
	}
	tree.FeatureNames = FeatureNames
	tree.Prune(Xval, yval)

	sm := &SelectionModel{Weights: w, Tree: tree, maxE: maxE, maxP: maxP}
	sm.Accuracy = tree.Accuracy(Xte, yte)
	var savedJ, baseJ float64
	for _, id := range idx[nTrain:] {
		m := ms[id]
		switch tree.Predict(m.Site.Features()) {
		case Use4G:
			sm.TestUse4G++
			savedJ += m.Energy4GJ
		default:
			sm.TestUse5G++
			savedJ += m.Energy5GJ
		}
		baseJ += m.Energy5GJ
	}
	if baseJ > 0 {
		sm.EnergySavingPct = (baseJ - savedJ) / baseJ * 100
	}
	return sm, nil
}

// Choose returns the model's radio choice for a website.
func (m *SelectionModel) Choose(w Website) int {
	return m.Tree.Predict(w.Features())
}

// TopFactors returns the names of the features used by the tree's
// shallowest splits — the interpretable structure of Fig. 22.
func (m *SelectionModel) TopFactors(n int) []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range m.Tree.Splits() {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s.Name)
		}
		if len(out) == n {
			break
		}
	}
	return out
}

// TrainAll trains every Table 6 model on one measurement set.
func TrainAll(ms []Measurement, seed int64) ([]*SelectionModel, error) {
	out := make([]*SelectionModel, 0, len(Models))
	for _, w := range Models {
		m, err := TrainSelection(ms, w, seed)
		if err != nil {
			return nil, fmt.Errorf("web: training %s: %w", w.ID, err)
		}
		out = append(out, m)
	}
	return out, nil
}
