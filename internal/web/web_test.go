package web

import (
	"math/rand"
	"testing"

	"fivegsim/internal/stats"
)

func corpus(t *testing.T, n int) []Website {
	t.Helper()
	return GenCorpus(n, 1)
}

func measurements(t *testing.T, n, repeats int) []Measurement {
	t.Helper()
	ms, err := MeasureCorpus(corpus(t, n), repeats, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestWebsiteDerivedFeatures(t *testing.T) {
	w := Website{NumObjects: 100, DynamicObjects: 30, TotalBytes: 5e6, DynamicBytes: 2e6}
	if got := w.DynamicRatio(); got != 0.3 {
		t.Errorf("DNO = %v", got)
	}
	if got := w.DynamicSizeRatio(); got != 0.4 {
		t.Errorf("DSO = %v", got)
	}
	if got := w.AvgObjectBytes(); got != 5e4 {
		t.Errorf("AOS = %v", got)
	}
	var zero Website
	if zero.DynamicRatio() != 0 || zero.DynamicSizeRatio() != 0 || zero.AvgObjectBytes() != 0 {
		t.Error("zero website derived features should be zero")
	}
	f := w.Features()
	if len(f) != len(FeatureNames) {
		t.Fatalf("feature width %d vs names %d", len(f), len(FeatureNames))
	}
}

func TestGenCorpusDistributions(t *testing.T) {
	sites := corpus(t, 1500)
	if len(sites) != 1500 {
		t.Fatalf("corpus size %d", len(sites))
	}
	var nos, pss, dnos []float64
	for _, w := range sites {
		if w.NumObjects < 1 || w.NumObjects > 1200 {
			t.Fatalf("object count %d out of range", w.NumObjects)
		}
		if w.TotalBytes <= 0 || w.TotalBytes > 60e6 {
			t.Fatalf("page size %v out of range", w.TotalBytes)
		}
		if w.DynamicObjects > w.NumObjects {
			t.Fatal("more dynamic objects than objects")
		}
		nos = append(nos, float64(w.NumObjects))
		pss = append(pss, w.TotalBytes)
		dnos = append(dnos, w.DynamicRatio())
	}
	if med := stats.Median(nos); med < 40 || med > 130 {
		t.Errorf("object-count median = %v, want ~70", med)
	}
	if med := stats.Median(pss); med < 0.5e6 || med > 8e6 {
		t.Errorf("page-size median = %v, want a few MB", med)
	}
	// The corpus spans the Fig. 19 buckets: small, medium, and huge pages.
	if stats.Max(pss) < 10e6 {
		t.Error("no >10MB pages in the corpus")
	}
	if stats.Min(pss) > 1e6 {
		t.Error("no <1MB pages in the corpus")
	}
	// A noticeable dynamic-heavy tail exists (ad-heavy sites).
	heavy := 0
	for _, d := range dnos {
		if d > 0.6 {
			heavy++
		}
	}
	if heavy < 50 {
		t.Errorf("dynamic-heavy sites = %d, want a visible tail", heavy)
	}
}

func TestLoadBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := corpus(t, 10)[0]
	l5, err := Load(w, Profile5G, rng)
	if err != nil {
		t.Fatal(err)
	}
	l4, err := Load(w, Profile4G, rng)
	if err != nil {
		t.Fatal(err)
	}
	if l5.PLTSeconds <= 0 || l4.PLTSeconds <= 0 {
		t.Fatal("non-positive PLT")
	}
	if l5.EnergyJ <= 0 || l4.EnergyJ <= 0 {
		t.Fatal("non-positive energy")
	}
	if l5.MeanMbps <= 0 {
		t.Fatal("non-positive goodput")
	}
}

func TestFiveGFasterFourGCheaper(t *testing.T) {
	// Fig. 20: 5G PLT is (almost) always better; 4G energy is always
	// better.
	ms := measurements(t, 300, 3)
	fasterCount, cheaperCount := 0, 0
	for _, m := range ms {
		if m.PLT5G < m.PLT4G {
			fasterCount++
		}
		if m.Energy4GJ < m.Energy5GJ {
			cheaperCount++
		}
	}
	if frac := float64(fasterCount) / float64(len(ms)); frac < 0.97 {
		t.Errorf("5G faster on only %.0f%% of sites", frac*100)
	}
	if frac := float64(cheaperCount) / float64(len(ms)); frac < 0.97 {
		t.Errorf("4G cheaper on only %.0f%% of sites", frac*100)
	}
}

func TestGapGrowsWithPageWeight(t *testing.T) {
	// Fig. 19: as the number of objects (and page size) grows, the
	// 4G-vs-5G PLT gap widens, and so does the energy gap in 4G's favour.
	ms := measurements(t, 600, 2)
	var smallGap, bigGap []float64
	var smallE, bigE []float64
	for _, m := range ms {
		gap := m.PLT4G - m.PLT5G
		eGap := m.Energy5GJ - m.Energy4GJ
		if m.Site.NumObjects <= 50 {
			smallGap = append(smallGap, gap)
			smallE = append(smallE, eGap)
		}
		if m.Site.NumObjects > 200 {
			bigGap = append(bigGap, gap)
			bigE = append(bigE, eGap)
		}
	}
	if len(smallGap) < 10 || len(bigGap) < 10 {
		t.Fatalf("bucket sizes %d/%d too small", len(smallGap), len(bigGap))
	}
	if stats.Mean(bigGap) <= stats.Mean(smallGap) {
		t.Errorf("PLT gap does not grow: small %.2f vs big %.2f",
			stats.Mean(smallGap), stats.Mean(bigGap))
	}
	if stats.Mean(bigE) <= stats.Mean(smallE) {
		t.Errorf("energy gap does not grow: small %.2f vs big %.2f",
			stats.Mean(smallE), stats.Mean(bigE))
	}
}

func TestFig21SavingsAtSmallPenalty(t *testing.T) {
	// Fig. 21: a small PLT penalty buys a large (tens of percent) energy
	// saving, and savings decline as the penalty bucket grows.
	ms := measurements(t, 800, 2)
	var pens, savs []float64
	for _, m := range ms {
		pens = append(pens, m.PLTPenaltyPct)
		savs = append(savs, m.EnergySavingPct)
	}
	buckets, err := stats.Bin(pens, savs, 0, 120, 20)
	if err != nil {
		t.Fatal(err)
	}
	first := stats.Mean(buckets[0].Values)
	if len(buckets[0].Values) > 3 && (first < 40 || first > 95) {
		t.Errorf("saving at the smallest penalty bucket = %.0f%%, want large (~70%%)", first)
	}
	// Monotone-ish decline across populated buckets.
	prev := 1e9
	for _, b := range buckets {
		if len(b.Values) < 5 {
			continue
		}
		m := stats.Mean(b.Values)
		if m > prev+15 {
			t.Errorf("savings increase across penalty buckets: %v then %v", prev, m)
		}
		prev = m
	}
}

func TestMeasureCorpusAveraging(t *testing.T) {
	ms := measurements(t, 20, 4)
	if len(ms) != 20 {
		t.Fatalf("measurements %d", len(ms))
	}
	for _, m := range ms {
		if m.PLT5G <= 0 || m.PLT4G <= 0 || m.Energy5GJ <= 0 || m.Energy4GJ <= 0 {
			t.Fatal("non-positive averaged metrics")
		}
	}
	// Repeats clamped to >= 1.
	if _, err := MeasureCorpus(corpus(t, 3), 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDeterministicGivenSeed(t *testing.T) {
	w := corpus(t, 1)[0]
	a, err := Load(w, Profile5G, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(w, Profile5G, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if a.PLTSeconds != b.PLTSeconds || a.EnergyJ != b.EnergyJ {
		t.Error("load not deterministic")
	}
}
