package speedtest

import (
	"testing"

	"fivegsim/internal/device"
	"fivegsim/internal/geo"
	"fivegsim/internal/radio"
)

func client(t *testing.T, m device.Model, n radio.Network, seed int64) *Client {
	t.Helper()
	spec, err := device.Lookup(m)
	if err != nil {
		t.Fatal(err)
	}
	return NewClient(spec, n, geo.Minneapolis.Loc, seed)
}

func nearFar(t *testing.T) (near, far geo.Server) {
	t.Helper()
	reg := geo.NewCarrierRegistry("Verizon")
	sorted := reg.SortedByDistance(geo.Minneapolis.Loc)
	return sorted[0], sorted[len(sorted)-1]
}

func TestMultiConnMmWaveFlatAcrossDistance(t *testing.T) {
	// Fig. 3: with multiple connections the S20U tops 3 Gbps against every
	// US server.
	c := client(t, device.S20U, radio.VerizonNSAmmWave, 1)
	near, far := nearFar(t)
	for _, s := range []geo.Server{near, far} {
		sum := c.Repeat(s, Multi, 10)
		if sum.DLp95Mbps < 3000 {
			t.Errorf("%s: multi-conn DL p95 = %.0f, want > 3000", s.Name, sum.DLp95Mbps)
		}
	}
}

func TestSingleConnDecaysWithDistance(t *testing.T) {
	// Fig. 3: single-connection throughput degrades as distance grows, but
	// reaches near-peak against the closest server.
	c := client(t, device.S20U, radio.VerizonNSAmmWave, 2)
	near, far := nearFar(t)
	nearSum := c.Repeat(near, Single, 10)
	farSum := c.Repeat(far, Single, 10)
	if nearSum.DLp95Mbps < 2500 {
		t.Errorf("near single-conn DL = %.0f, want ~3000", nearSum.DLp95Mbps)
	}
	if farSum.DLp95Mbps >= 0.5*nearSum.DLp95Mbps {
		t.Errorf("far single-conn DL = %.0f vs near %.0f: want a steep decay",
			farSum.DLp95Mbps, nearSum.DLp95Mbps)
	}
}

func TestUplinkAround220(t *testing.T) {
	// Fig. 4: S20U uplink ~220 Mbps, single or multiple connections.
	c := client(t, device.S20U, radio.VerizonNSAmmWave, 3)
	near, _ := nearFar(t)
	for _, mode := range []ConnMode{Single, Multi} {
		sum := c.Repeat(near, mode, 10)
		if sum.ULp95Mbps < 180 || sum.ULp95Mbps > 240 {
			t.Errorf("%s uplink p95 = %.0f, want ~220", mode, sum.ULp95Mbps)
		}
	}
}

func TestRTTIncreasesWithDistance(t *testing.T) {
	// Fig. 1/2.
	c := client(t, device.S20U, radio.VerizonNSAmmWave, 4)
	reg := geo.NewCarrierRegistry("Verizon")
	sorted := reg.SortedByDistance(geo.Minneapolis.Loc)
	nearSum := c.Repeat(sorted[0], Single, 5)
	midSum := c.Repeat(sorted[len(sorted)/2], Single, 5)
	farSum := c.Repeat(sorted[len(sorted)-1], Single, 5)
	if !(nearSum.RTTMs < midSum.RTTMs && midSum.RTTMs < farSum.RTTMs) {
		t.Errorf("RTT not increasing: %.1f, %.1f, %.1f",
			nearSum.RTTMs, midSum.RTTMs, farSum.RTTMs)
	}
	if nearSum.RTTMs > 12 {
		t.Errorf("near RTT = %.1f ms, want close to the ~6 ms minimum", nearSum.RTTMs)
	}
}

func TestSAHalfOfNSA(t *testing.T) {
	// Figs. 6/7: T-Mobile SA reaches about half of NSA in both directions.
	near, _ := nearFar(t)
	nsa := client(t, device.S20U, radio.TMobileNSALowBand, 5).Repeat(near, Multi, 10)
	sa := client(t, device.S20U, radio.TMobileSALowBand, 5).Repeat(near, Multi, 10)
	dlRatio := sa.DLp95Mbps / nsa.DLp95Mbps
	if dlRatio < 0.35 || dlRatio > 0.65 {
		t.Errorf("SA/NSA DL ratio = %.2f, want ~0.5", dlRatio)
	}
	ulRatio := sa.ULp95Mbps / nsa.ULp95Mbps
	if ulRatio < 0.35 || ulRatio > 0.65 {
		t.Errorf("SA/NSA UL ratio = %.2f, want ~0.5", ulRatio)
	}
}

func TestPX5VsS20U(t *testing.T) {
	// Fig. 23: the 8CC S20U improves 50-60% over the 4CC PX5.
	near, _ := nearFar(t)
	px5 := client(t, device.PX5, radio.VerizonNSAmmWave, 6).Repeat(near, Multi, 10)
	s20 := client(t, device.S20U, radio.VerizonNSAmmWave, 6).Repeat(near, Multi, 10)
	gain := s20.DLp95Mbps/px5.DLp95Mbps - 1
	if gain < 0.4 || gain > 0.8 {
		t.Errorf("S20U over PX5 gain = %.0f%%, want ~50-60%%", gain*100)
	}
}

func TestPortCappedServers(t *testing.T) {
	// Fig. 24: third-party servers bounded by 1/2 Gbps port caps.
	c := client(t, device.S20U, radio.VerizonNSAmmWave, 7)
	reg := geo.NewMinnesotaRegistry("Verizon")
	sums := c.Campaign(reg.Servers, Multi, 5)
	if sums[0].DLp95Mbps < 3000 {
		t.Errorf("carrier server DL = %.0f, want > 3000", sums[0].DLp95Mbps)
	}
	var oneGig bool
	for _, s := range sums {
		if s.Server.CapMbps == 1000 {
			oneGig = true
			if s.DLp95Mbps > 1001 {
				t.Errorf("%s exceeds its 1 Gbps cap: %.0f", s.Server.Name, s.DLp95Mbps)
			}
			if s.DLp95Mbps < 900 {
				t.Errorf("%s should saturate its 1 Gbps cap, got %.0f", s.Server.Name, s.DLp95Mbps)
			}
		}
	}
	if !oneGig {
		t.Fatal("registry contains no 1 Gbps-capped server")
	}
}

func TestMultiConnCount(t *testing.T) {
	c := client(t, device.S20U, radio.VerizonNSAmmWave, 8)
	near, _ := nearFar(t)
	for i := 0; i < 20; i++ {
		m := c.Run(near, Multi)
		if m.Conns < 15 || m.Conns > 25 {
			t.Fatalf("multi-conn count = %d, want 15-25", m.Conns)
		}
	}
	if m := c.Run(near, Single); m.Conns != 1 {
		t.Errorf("single mode used %d connections", m.Conns)
	}
}

func TestRepeatDeterministic(t *testing.T) {
	near, _ := nearFar(t)
	a := client(t, device.S20U, radio.VerizonNSAmmWave, 99).Repeat(near, Multi, 5)
	b := client(t, device.S20U, radio.VerizonNSAmmWave, 99).Repeat(near, Multi, 5)
	if a.DLp95Mbps != b.DLp95Mbps || a.RTTMs != b.RTTMs {
		t.Error("campaign not deterministic for equal seeds")
	}
}

func TestSummaryString(t *testing.T) {
	near, _ := nearFar(t)
	sum := client(t, device.S20U, radio.VerizonNSAmmWave, 1).Repeat(near, Single, 2)
	if sum.String() == "" {
		t.Error("empty summary string")
	}
	if sum.Runs != 2 {
		t.Errorf("runs = %d", sum.Runs)
	}
}

func TestRepeatClampsN(t *testing.T) {
	near, _ := nearFar(t)
	sum := client(t, device.S20U, radio.VerizonNSAmmWave, 1).Repeat(near, Single, 0)
	if sum.Runs != 1 {
		t.Errorf("Repeat(0) ran %d times, want 1", sum.Runs)
	}
}
