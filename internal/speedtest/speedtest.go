// Package speedtest reimplements the paper's Ookla-Speedtest-based
// measurement methodology (§3.1): latency probes plus 15-second
// downlink/uplink bulk tests against a chosen server, in single- or
// multi-connection mode, repeated >= 10 times per configuration with the
// 95th percentile reported as the peak-performance metric.
//
// Like the real service, the multi-connection mode opens an undisclosed
// 15-25 TCP connections; the single-connection mode uses one. Carrier-hosted
// servers are reached inside the carrier network (no Internet-side
// bottleneck); third-party servers can be port-capped (Fig. 24).
package speedtest

import (
	"fmt"
	"math/rand"

	"fivegsim/internal/device"
	"fivegsim/internal/geo"
	"fivegsim/internal/netpath"
	"fivegsim/internal/radio"
	"fivegsim/internal/stats"
	"fivegsim/internal/transport"
)

// ConnMode selects the Speedtest connection strategy.
type ConnMode int

const (
	// Single uses one TCP connection.
	Single ConnMode = iota
	// Multi uses 15-25 parallel TCP connections (Speedtest picks the
	// count; the algorithm is not disclosed).
	Multi
)

func (m ConnMode) String() string {
	if m == Multi {
		return "multiple"
	}
	return "single"
}

// Client runs Speedtest-style measurements for one UE on one network.
type Client struct {
	UE      device.Spec
	Network radio.Network
	Loc     geo.Point
	// RSRPDbm is the signal at the test location; 0 means clear-LoS peak
	// (the stationary outdoor methodology of §3.1).
	RSRPDbm float64
	// WmemBytes is the server-side TCP send buffer. Zero means tuned:
	// production Speedtest servers are provisioned for high-BDP paths.
	WmemBytes float64

	rng *rand.Rand
}

// NewClient returns a client with a deterministic random source.
func NewClient(ue device.Spec, n radio.Network, loc geo.Point, seed int64) *Client {
	return &Client{UE: ue, Network: n, Loc: loc, rng: rand.New(rand.NewSource(seed))}
}

// Measurement is the result of one Speedtest run.
type Measurement struct {
	Server     geo.Server
	DistanceKm float64
	Mode       ConnMode
	RTTMs      float64 // lowest of the latency probes (Speedtest's metric)
	DLMbps     float64
	ULMbps     float64
	Conns      int // connections actually used
}

// path builds the netpath for a server with per-run signal variation.
func (c *Client) path(s geo.Server) netpath.Path {
	p := netpath.New(c.UE, c.Network, c.Loc, s)
	rsrp := c.RSRPDbm
	if rsrp == 0 {
		rsrp = c.Network.Band.PeakRSRPDbm
	}
	// Per-run fading wiggle: even stationary LoS links breathe a little.
	p.RSRPDbm = rsrp - c.rng.Float64()*3
	return p
}

// Run performs one full test (latency + downlink + uplink) against a server.
func (c *Client) Run(s geo.Server, mode ConnMode) Measurement {
	p := c.path(s)
	m := Measurement{Server: s, DistanceKm: p.DistanceKm, Mode: mode}

	// Latency: Speedtest reports the lowest of several probes.
	m.RTTMs = p.PingMs(c.rng)
	for i := 0; i < 4; i++ {
		if v := p.PingMs(c.rng); v < m.RTTMs {
			m.RTTMs = v
		}
	}

	conns := 1
	if mode == Multi {
		conns = 15 + c.rng.Intn(11) // 15..25, undisclosed algorithm
	}
	m.Conns = conns
	wmem := c.WmemBytes
	if wmem == 0 {
		wmem = transport.TunedWmemBytes
	}

	dl := transport.SimulateTCP(p.Params(radio.Downlink), transport.TCPOptions{
		Flows: conns, WmemBytes: wmem}, c.rng)
	m.DLMbps = dl.MeanMbps
	ul := transport.SimulateTCP(p.Params(radio.Uplink), transport.TCPOptions{
		Flows: conns, WmemBytes: wmem}, c.rng)
	m.ULMbps = ul.MeanMbps
	return m
}

// Summary aggregates repeated runs against one server, reporting the paper's
// peak metric: the 95th percentile across runs (§3.1), plus the median RTT.
type Summary struct {
	Server     geo.Server
	DistanceKm float64
	Mode       ConnMode
	Runs       int
	RTTMs      float64 // median across runs (of per-run minimum pings)
	DLp95Mbps  float64
	ULp95Mbps  float64
}

func (s Summary) String() string {
	return fmt.Sprintf("%-36s %7.0f km  rtt %5.1f ms  DL %7.1f  UL %6.1f Mbps (%s)",
		s.Server.Name, s.DistanceKm, s.RTTMs, s.DLp95Mbps, s.ULp95Mbps, s.Mode)
}

// Repeat runs n tests against a server and summarises them. The paper
// repeats each <UE, carrier, server, mode> setting at least 10 times.
func (c *Client) Repeat(s geo.Server, mode ConnMode, n int) Summary {
	if n < 1 {
		n = 1
	}
	var rtts, dls, uls []float64
	for i := 0; i < n; i++ {
		m := c.Run(s, mode)
		rtts = append(rtts, m.RTTMs)
		dls = append(dls, m.DLMbps)
		uls = append(uls, m.ULMbps)
	}
	p := c.path(s)
	// A NaN in any series would shift every rank below (NaNs sort first);
	// the model must never produce one, so fail loudly instead of
	// summarising corrupted order statistics.
	if stats.HasNaN(rtts) || stats.HasNaN(dls) || stats.HasNaN(uls) {
		panic(fmt.Sprintf("speedtest: NaN in measurement series for server %s", s.Name))
	}
	// The per-run series are owned by this call: sort in place once instead
	// of letting each percentile copy-and-sort.
	return Summary{
		Server: s, DistanceKm: p.DistanceKm, Mode: mode, Runs: n,
		RTTMs:     stats.PercentileSorted(stats.SortN(rtts), 50),
		DLp95Mbps: stats.PercentileSorted(stats.SortN(dls), 95),
		ULp95Mbps: stats.PercentileSorted(stats.SortN(uls), 95),
	}
}

// Campaign measures every server in the pool with n repeats per server.
func (c *Client) Campaign(servers []geo.Server, mode ConnMode, n int) []Summary {
	out := make([]Summary, 0, len(servers))
	for _, s := range servers {
		out = append(out, c.Repeat(s, mode, n))
	}
	return out
}
