// Benchmarks: one per table and figure of the paper's evaluation. Each
// benchmark regenerates its result from the simulation substrate via
// internal/experiments, so `go test -bench=.` reproduces the whole
// evaluation and times it. Quick-mode repeat counts are used so the full
// battery completes in minutes; run the fgrepro CLI without -quick for the
// paper-scale campaign.
package fivegsim

import (
	"testing"

	"fivegsim/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Seed: 1, Quick: true}
	for i := 0; i < b.N; i++ {
		ts, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(ts) == 0 || len(ts[0].Rows) == 0 {
			b.Fatalf("%s produced no output", id)
		}
	}
}

// §2: dataset statistics.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// §3: network performance.
func BenchmarkFig1(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig23(b *testing.B) { benchExperiment(b, "fig23") }
func BenchmarkFig24(b *testing.B) { benchExperiment(b, "fig24") }

// §4: RRC and power.
func BenchmarkFig10(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig25(b *testing.B)      { benchExperiment(b, "fig25") }
func BenchmarkTable2(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkTable7(b *testing.B)     { benchExperiment(b, "table7") }
func BenchmarkFig11(b *testing.B)      { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)      { benchExperiment(b, "fig16") }
func BenchmarkFig26(b *testing.B)      { benchExperiment(b, "fig26") }
func BenchmarkFig27(b *testing.B)      { benchExperiment(b, "fig27") }
func BenchmarkTable3(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkTable8(b *testing.B)     { benchExperiment(b, "table8") }
func BenchmarkTable9(b *testing.B)     { benchExperiment(b, "table9") }
func BenchmarkValidation(b *testing.B) { benchExperiment(b, "validation") }

// §5: video streaming.
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18a(b *testing.B) { benchExperiment(b, "fig18a") }
func BenchmarkFig18b(b *testing.B) { benchExperiment(b, "fig18b") }
func BenchmarkFig18c(b *testing.B) { benchExperiment(b, "fig18c") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// Ablations and extensions.
func BenchmarkAblationTail(b *testing.B)            { benchExperiment(b, "ablation-tail") }
func BenchmarkAblationWmem(b *testing.B)            { benchExperiment(b, "ablation-wmem") }
func BenchmarkAblationChunkBuffer(b *testing.B)     { benchExperiment(b, "ablation-chunk-buffer") }
func BenchmarkAblationSwitchThreshold(b *testing.B) { benchExperiment(b, "ablation-switch-threshold") }
func BenchmarkExtensionMidBand(b *testing.B)        { benchExperiment(b, "extension-midband") }
func BenchmarkExtensionBBR(b *testing.B)            { benchExperiment(b, "extension-bbr") }
func BenchmarkExtensionAbandon(b *testing.B)        { benchExperiment(b, "extension-abandon") }
func BenchmarkLongitudinal(b *testing.B)            { benchExperiment(b, "longitudinal") }

// Whole-campaign runners: the serial baseline and the worker-pool runner
// (GOMAXPROCS workers). On a multi-core machine the parallel battery should
// finish several times faster with byte-identical tables (asserted by
// TestParallelMatchesSerialByteForByte in internal/experiments).
func BenchmarkRunAllSerial(b *testing.B) {
	cfg := experiments.Config{Seed: 1, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ts := experiments.RunAll(cfg); len(ts) == 0 {
			b.Fatal("RunAll produced no tables")
		}
	}
}

func BenchmarkRunAllParallel(b *testing.B) {
	cfg := experiments.Config{Seed: 1, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rs := experiments.RunAllParallel(cfg, 0); len(rs) == 0 {
			b.Fatal("RunAllParallel produced no results")
		}
	}
}

// §6: web browsing.
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)  { benchExperiment(b, "fig21") }
func BenchmarkFig22(b *testing.B)  { benchExperiment(b, "fig22") }
